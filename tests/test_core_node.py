"""Unit tests for ColoringNode: Algorithms 1-3 driven with scripted inputs.

These tests bypass the radio engine entirely: they call ``step``/``deliver``
directly with a deterministic fake RNG (geometric always 1, i.e. a node
transmits at every opportunity) so each pseudocode line can be pinned.
"""

import pytest

from repro.core import ColoringNode, Parameters
from repro.radio import AssignMessage, ColorMessage, CounterMessage, RequestMessage


class FakeRng:
    """geometric() == 1: every transmission opportunity fires."""

    def geometric(self, p):
        return 1

    def random(self):  # pragma: no cover - not used by ColoringNode
        return 0.0


def tiny_params(**overrides):
    """n=2 floors log n at 1, so the derived quantities are tiny and exact:
    wait = alpha*delta = 2, crit_0 = 1, crit_i = 2, threshold = 6,
    serve_window = 1."""
    base = dict(n=2, delta=2, kappa1=1, kappa2=2, alpha=1, beta=1, gamma=1, sigma=3)
    base.update(overrides)
    return Parameters(**base)


@pytest.fixture
def rng():
    return FakeRng()


def drive(node, rng, start, count):
    """Step ``node`` for slots [start, start+count); return transmissions
    as {slot: message}."""
    out = {}
    for t in range(start, start + count):
        m = node.step(t, rng)
        if m is not None:
            out[t] = m
    return out


class TestWakeAndWait:
    def test_wakes_into_a0(self):
        node = ColoringNode(0, tiny_params())
        assert node.state.label == "Z"
        node.wake(0)
        assert node.state.label == "A_0"

    def test_silent_during_wait(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        sent = drive(node, rng, 0, p.wait_slots)
        assert sent == {}

    def test_transmits_after_wait(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        sent = drive(node, rng, 0, p.wait_slots + 1)
        assert list(sent) == [p.wait_slots]
        msg = sent[p.wait_slots]
        assert isinstance(msg, CounterMessage)
        assert msg.color == 0
        assert msg.counter == 1  # chi of empty P_v is 0, incremented once


class TestLoneLeaderElection:
    def test_counter_climbs_to_threshold_and_decides(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        # Active slots start at wait_slots; threshold at counter == 6.
        sent = drive(node, rng, 0, p.wait_slots + p.threshold + 2)
        decide_slot = p.wait_slots + p.threshold - 1  # counter hits 6 here
        assert node.done and node.color == 0
        # While verifying: CounterMessages with counters 1..5;
        # from decide_slot on: leader ColorMessages.
        counters = [m.counter for m in sent.values() if isinstance(m, CounterMessage)]
        assert counters == list(range(1, p.threshold))
        leader_msgs = [m for m in sent.values() if isinstance(m, ColorMessage)]
        assert all(m.color == 0 for m in leader_msgs)
        assert node.state.label == "C_0"

    def test_decision_recorded_irrevocably(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        drive(node, rng, 0, 50)
        assert node.color == 0
        # Deliveries after the decision never change the color.
        node.deliver(60, ColorMessage(sender=9, color=0))
        assert node.color == 0


class TestLeaderAnnouncementHandling:
    def test_mc0_during_wait_moves_to_request(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        node.deliver(0, ColorMessage(sender=7, color=0))
        assert node.state.label == "R"
        assert node.leader == 7

    def test_overheard_assignment_counts_as_announcement(self):
        node = ColoringNode(0, tiny_params())
        node.wake(0)
        node.deliver(0, AssignMessage(sender=7, color=0, target=5, tc=3))
        assert node.state.label == "R"
        assert node.leader == 7

    def test_request_message_transmitted(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        node.deliver(0, ColorMessage(sender=7, color=0))
        sent = drive(node, rng, 1, 3)
        msgs = list(sent.values())
        assert msgs and all(isinstance(m, RequestMessage) for m in msgs)
        assert msgs[0].leader == 7

    def test_mc_i_other_color_ignored_in_a0(self):
        node = ColoringNode(0, tiny_params())
        node.wake(0)
        node.deliver(0, ColorMessage(sender=7, color=3))
        assert node.state.label == "A_0"


class TestRequestState:
    def make_requester(self, rng, p=None):
        p = p or tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        node.deliver(0, ColorMessage(sender=7, color=0))
        return node

    def test_assignment_from_leader_enters_verify(self, rng):
        p = tiny_params()
        node = self.make_requester(rng, p)
        node.deliver(5, AssignMessage(sender=7, color=0, target=0, tc=2))
        assert node.tc == 2
        assert node.state.label == f"A_{2 * (p.kappa2 + 1)}"

    def test_assignment_from_other_leader_ignored(self, rng):
        node = self.make_requester(rng)
        node.deliver(5, AssignMessage(sender=8, color=0, target=0, tc=2))
        assert node.state.label == "R"

    def test_assignment_for_other_target_ignored(self, rng):
        node = self.make_requester(rng)
        node.deliver(5, AssignMessage(sender=7, color=0, target=3, tc=2))
        assert node.state.label == "R"

    def test_verify_after_assignment_waits_again(self, rng):
        p = tiny_params()
        node = self.make_requester(rng, p)
        node.deliver(5, AssignMessage(sender=7, color=0, target=0, tc=1))
        sent = drive(node, rng, 6, p.wait_slots)
        assert sent == {}  # fresh passive wait in the new A_i


class TestCriticalRangeResets:
    def activate(self, rng, p=None):
        p = p or tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        drive(node, rng, 0, p.wait_slots + 1)  # now active, counter == 1
        return node, p.wait_slots  # current slot index is wait_slots

    def test_reset_when_within_critical_range(self, rng):
        node, t = self.activate(rng)
        # crit_0 = 1; own counter at slot t is 1; competitor counter 2.
        node.deliver(t, CounterMessage(sender=5, color=0, counter=2))
        assert node.resets == 1
        # chi must avoid [2-1, 2+1]; max value <= 0 outside is 0.
        assert node.counter(t) == 0

    def test_no_reset_outside_critical_range(self, rng):
        node, t = self.activate(rng)
        node.deliver(t, CounterMessage(sender=5, color=0, counter=5))
        assert node.resets == 0
        assert node.counter(t) == 1
        assert 5 in node._competitors  # still recorded (L27-28)

    def test_chi_avoids_all_stored_competitors(self, rng):
        node, t = self.activate(rng)
        node.deliver(t, CounterMessage(sender=5, color=0, counter=1))
        # competitor at 1, crit 1 -> forbidden [0, 2]; chi = -1.
        assert node.counter(t) == -1

    def test_competitor_estimates_advance(self, rng):
        node, t = self.activate(rng)
        node.deliver(t, CounterMessage(sender=5, color=0, counter=4))
        assert node._competitor_estimate(5, t) == 4
        assert node._competitor_estimate(5, t + 3) == 7

    def test_counter_message_other_color_ignored(self, rng):
        node, t = self.activate(rng)
        node.deliver(t, CounterMessage(sender=5, color=2, counter=1))
        assert node.resets == 0 and 5 not in node._competitors

    def test_passive_reception_stores_without_reset(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        node.deliver(0, CounterMessage(sender=5, color=0, counter=3))
        assert 5 in node._competitors and node.resets == 0

    def test_chi_after_wait_avoids_heard_counters(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        # Heard at slot 0 with counter 0: estimate at activation-1 (slot 1)
        # is 1; forbidden [0, 2] -> chi = -1, so first transmitted counter
        # is 0.
        node.deliver(0, CounterMessage(sender=5, color=0, counter=0))
        sent = drive(node, rng, 0, p.wait_slots + 1)
        assert sent[p.wait_slots].counter == 0


class TestVerifyEscalation:
    def test_mc_i_moves_to_next_state(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        node.deliver(0, AssignMessage(sender=7, color=0, target=0, tc=1))
        node.deliver(1, AssignMessage(sender=7, color=0, target=0, tc=1))
        # Now in A_3 (tc=1, kappa2=2).  A neighbor wins color 3:
        start = node.index
        node.deliver(3, ColorMessage(sender=9, color=start))
        assert node.state.label == f"A_{start + 1}"

    def test_competitor_list_cleared_on_entry(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        node.deliver(0, CounterMessage(sender=5, color=0, counter=3))
        assert node._competitors
        node.deliver(1, ColorMessage(sender=7, color=0))  # -> R
        node.deliver(2, AssignMessage(sender=7, color=0, target=0, tc=1))
        assert node._competitors == {}


class TestLeaderQueue:
    def make_leader(self, rng, p=None):
        p = p or tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        drive(node, rng, 0, p.wait_slots + p.threshold)
        assert node.color == 0
        return node, p.wait_slots + p.threshold

    def test_idle_leader_announces(self, rng):
        node, t = self.make_leader(rng)
        msg = node.step(t, rng)
        assert isinstance(msg, ColorMessage) and not isinstance(msg, AssignMessage)

    def test_requests_served_fifo_with_incrementing_tc(self, rng):
        p = tiny_params()
        node, t = self.make_leader(rng, p)
        node.deliver(t, RequestMessage(sender=11, leader=0))
        node.deliver(t + 1, RequestMessage(sender=12, leader=0))
        # serve_window = 1: one slot per assignment.
        m1 = node.step(t + 1, rng)
        m2 = node.step(t + 2, rng)
        assert isinstance(m1, AssignMessage) and (m1.target, m1.tc) == (11, 1)
        assert isinstance(m2, AssignMessage) and (m2.target, m2.tc) == (12, 2)

    def test_duplicate_requests_not_requeued(self, rng):
        p = tiny_params(beta=5)  # longer window so 11 stays queued
        node, t = self.make_leader(rng, p)
        node.deliver(t, RequestMessage(sender=11, leader=0))
        node.step(t + 1, rng)  # serving 11 now
        node.deliver(t + 1, RequestMessage(sender=11, leader=0))
        assert list(node._queue) == [11]

    def test_rerequest_after_service_gets_fresh_tc(self, rng):
        p = tiny_params()
        node, t = self.make_leader(rng, p)
        node.deliver(t, RequestMessage(sender=11, leader=0))
        m1 = node.step(t + 1, rng)
        node.step(t + 2, rng)  # window over, queue drained
        node.deliver(t + 2, RequestMessage(sender=11, leader=0))
        m2 = node.step(t + 3, rng)
        assert m1.tc == 1 and m2.tc == 2  # faithful Alg. 3 L10 semantics

    def test_requests_addressed_elsewhere_ignored(self, rng):
        node, t = self.make_leader(rng)
        node.deliver(t, RequestMessage(sender=11, leader=99))
        assert not node._queue


class TestColoredNonLeader:
    def test_announces_color_forever(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        # First assignment doubles as a leader announcement (A_0 -> R);
        # the second, received in R, carries the intra-cluster color.
        node.deliver(0, AssignMessage(sender=7, color=0, target=0, tc=1))
        node.deliver(1, AssignMessage(sender=7, color=0, target=0, tc=1))
        # Let it win color 3 unopposed.
        t = 2
        while not node.done:
            node.step(t, rng)
            t += 1
            assert t < 100
        msgs = [node.step(tt, rng) for tt in range(t, t + 5)]
        assert all(isinstance(m, ColorMessage) and m.color == node.color for m in msgs)

    def test_ignores_all_messages_once_colored(self, rng):
        p = tiny_params()
        node = ColoringNode(0, p)
        node.wake(0)
        drive(node, rng, 0, p.wait_slots + p.threshold)  # leader now
        node.deliver(99, CounterMessage(sender=5, color=0, counter=1))
        assert node.color == 0 and 5 not in node._competitors
