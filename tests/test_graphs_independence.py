"""Tests for kappa_1 / kappa_2 and exact MIS computation."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    UDG_KAPPA1,
    UDG_KAPPA2,
    clique_deployment,
    kappa1,
    kappa2,
    kappas,
    max_independent_set_size,
    mis_greedy_size,
    random_udg,
    ring_deployment,
    star_deployment,
)


class TestExactMis:
    def test_empty(self):
        assert max_independent_set_size(nx.Graph()) == 0

    def test_clique(self):
        assert max_independent_set_size(nx.complete_graph(8)) == 1

    def test_independent_set(self):
        g = nx.Graph()
        g.add_nodes_from(range(6))
        assert max_independent_set_size(g) == 6

    def test_cycle(self):
        # MIS of C_n is floor(n/2).
        for n in (4, 5, 6, 7, 9):
            assert max_independent_set_size(nx.cycle_graph(n)) == n // 2

    def test_petersen(self):
        assert max_independent_set_size(nx.petersen_graph()) == 4

    def test_subset_restriction(self):
        g = nx.cycle_graph(8)
        assert max_independent_set_size(g, nodes=[0, 1, 2]) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 9), st.floats(0.1, 0.9), st.integers(0, 10**6))
    def test_matches_networkx_bruteforce(self, n, p, seed):
        g = nx.gnp_random_graph(n, p, seed=seed)
        # Brute force over all subsets (n <= 9).
        best = 0
        nodes = list(g.nodes)
        for mask in range(1 << n):
            sel = [nodes[i] for i in range(n) if mask >> i & 1]
            if all(not g.has_edge(a, b) for i, a in enumerate(sel) for b in sel[i + 1 :]):
                best = max(best, len(sel))
        assert max_independent_set_size(g) == best


class TestGreedyMis:
    def test_lower_bounds_exact(self):
        for seed in range(5):
            g = nx.gnp_random_graph(20, 0.3, seed=seed)
            assert mis_greedy_size(g) <= max_independent_set_size(g)

    def test_at_least_one_on_nonempty(self):
        assert mis_greedy_size(nx.complete_graph(5)) == 1


class TestKappas:
    def test_ring(self):
        dep = ring_deployment(9)
        assert kappa1(dep) == 2
        assert kappa2(dep) == 3  # N_v^2 is a path of 5 nodes -> MIS 3

    def test_clique(self):
        dep = clique_deployment(6)
        assert kappas(dep) == (1, 1)

    def test_star(self):
        dep = star_deployment(7)
        # All 7 leaves are mutually independent and within hub's 1-hop.
        assert kappa1(dep) == 7
        assert kappa2(dep) == 7

    def test_udg_model_bounds(self):
        # Sect. 2: UDGs satisfy kappa_1 <= 5, kappa_2 <= 18.
        for seed in range(4):
            dep = random_udg(80, expected_degree=10, seed=seed)
            k1, k2 = kappas(dep)
            assert k1 <= UDG_KAPPA1
            assert k2 <= UDG_KAPPA2

    def test_greedy_mode_runs(self):
        dep = random_udg(60, expected_degree=8, seed=1)
        k1g = kappa1(dep, exact=False)
        assert 1 <= k1g <= kappa1(dep, exact=True)


class TestFig1Example:
    """Paper Fig. 1: a BIG that is not UDG-like can still have small kappas."""

    def test_hand_built_big(self):
        # A hub with 4 mutually-independent neighbors, each extended by a
        # pendant path: kappa_1 at the hub is 4.
        g = nx.Graph()
        g.add_edges_from([(0, 1), (0, 2), (0, 3), (0, 4)])
        g.add_edges_from([(1, 5), (2, 6), (3, 7), (4, 8)])
        from repro.graphs import from_graph

        dep = from_graph(g)
        assert max_independent_set_size(dep.graph, dep.closed_neighborhood(0).tolist()) == 4
        assert kappa2(dep) >= 4
