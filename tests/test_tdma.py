"""Tests for the TDMA application layer."""

import numpy as np
import pytest

from repro import run_coloring
from repro.graphs import clustered_udg, path_deployment, random_udg, star_deployment
from repro.tdma import build_schedule, simulate_frame


class TestBuildSchedule:
    def test_rejects_incomplete(self):
        dep = path_deployment(2)
        with pytest.raises(ValueError, match="complete"):
            build_schedule(dep, np.array([0, -1]))

    def test_rejects_bad_shape(self):
        dep = path_deployment(2)
        with pytest.raises(ValueError, match="shape"):
            build_schedule(dep, np.array([0, 1, 2]))

    def test_frame_length(self):
        dep = path_deployment(3)
        sched = build_schedule(dep, np.array([0, 4, 0]))
        assert sched.frame_length == 5

    def test_local_frames(self):
        # Path 0-1-2-3-4 colored [0,1,0,1,9]: node 0's 2-hop view sees
        # colors {0,1}, local frame 2; node 4 sees 9, local frame 10.
        dep = path_deployment(5)
        sched = build_schedule(dep, np.array([0, 1, 0, 1, 9]))
        assert sched.local_frame[0] == 2
        assert sched.local_frame[4] == 10
        assert sched.bandwidth_share[0] == pytest.approx(0.5)


class TestScheduleProperties:
    @pytest.fixture(scope="class")
    def sched(self):
        dep = random_udg(50, expected_degree=9, seed=14, connected=True)
        res = run_coloring(dep, seed=140)
        assert res.completed and res.proper
        return build_schedule(dep, res.colors)

    def test_zero_direct_interference(self, sched):
        assert sched.direct_interference_pairs() == []
        assert sched.stats()["direct_interference"] == 0

    def test_max_interferers_bounded_by_kappa1(self, sched):
        from repro.graphs import kappa1

        assert sched.max_interferers() <= kappa1(sched.deployment)

    def test_bandwidth_shares_valid(self, sched):
        bw = sched.bandwidth_share
        assert (bw > 0).all() and (bw <= 1).all()

    def test_improper_coloring_detected(self):
        dep = path_deployment(2)
        sched = build_schedule(dep, np.array([3, 3]))
        assert sched.direct_interference_pairs() == [(0, 1)]


class TestSimulateFrame:
    def test_every_neighbor_slot_heard_on_path(self):
        dep = path_deployment(3)
        sched = build_schedule(dep, np.array([0, 1, 2]))
        out = simulate_frame(sched)
        # 0 hears 1; 1 hears 0 and 2; 2 hears 1 -> 4 deliveries; node 1's
        # neighbors are 2 hops apart but use distinct slots, so no loss.
        assert out["delivered"] == 4
        assert out["interfered"] == 0

    def test_two_hop_contention_counted(self):
        # Star: leaves share slot 1 -> the hub's slot-1 reception is
        # interfered (3 senders), hub's own slot heard by all leaves.
        dep = star_deployment(3)
        sched = build_schedule(dep, np.array([0, 1, 1, 1]))
        out = simulate_frame(sched)
        assert out["interfered"] == 1
        assert out["delivered"] == 3  # each leaf hears the hub

    def test_full_run_delivers_everyones_slot(self):
        dep = clustered_udg(2, 10, background=5, side=8.0, seed=3)
        res = run_coloring(dep, seed=33)
        assert res.completed and res.proper
        sched = build_schedule(dep, res.colors)
        out = simulate_frame(sched)
        assert out["delivered"] > 0
        assert out["frame_length"] == sched.frame_length
