"""Cross-replica batched execution: byte-identity with solo runs.

:mod:`repro.radio.replica` promises that replica ``r`` of a batched run
is **byte-identical** to the solo run with ``seed=seeds[r]`` — same
colors, same exact stop slot, same per-slot channel metrics (all six
columns, including the per-stream draw counters), and the same raw
:class:`~repro._util.RngMeter` state on the protocol stream.  These
tests check the promise the direct way, plus the two failure modes the
batch driver could introduce on its own:

- **Early-finish isolation** (the R>1 stop-predicate/PCG64-skip audit):
  a replica that completes early must not advance or meter the streams
  of still-running replicas.  We pin each replica's exact
  ``rng.draws``/``rng.calls`` against its solo run on a staggered-wake
  scenario where completion slots genuinely differ.
- **Shared draw-buffer aliasing**: replicas share one segment draw
  buffer; sharing must be invisible to results.

The conformance matrix (``REPLICA_MATRIX``) pins specific scenarios at
level-2 event granularity; the Hypothesis property here walks random
deployments, seeds, loss rates, and channel counts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BernoulliColoringNode, Parameters, run_coloring
from repro.core.node import ColoringNode
from repro.core.protocol import build_simulator
from repro.graphs import random_udg
from repro.radio.replica import ReplicaBatchSimulator, run_replicated
from repro.wakeup import uniform_random

_METRIC_COLUMNS = ("tx", "rx", "collisions", "lost", "protocol_draws", "loss_draws")


def _world(n=20, degree=5.0, graph_seed=3, wake_seed=4, wake_window=120):
    dep = random_udg(n, expected_degree=degree, seed=graph_seed, connected=True)
    params = Parameters.practical(n, max(2, dep.max_degree), 5, 18)
    if wake_window == 0:
        wake = np.zeros(n, dtype=np.int64)
    else:
        wake = uniform_random(n, window=wake_window, seed=wake_seed)
    return dep, params, wake


def _assert_result_identical(solo, batched):
    """Full ColoringResult equality: colors, slots, metrics, traces."""
    assert np.array_equal(solo.colors, batched.colors)
    assert np.array_equal(solo.tcs, batched.tcs)
    assert solo.slots == batched.slots
    assert solo.completed == batched.completed
    a = solo.trace.channel_metrics.as_arrays()
    b = batched.trace.channel_metrics.as_arrays()
    for name in _METRIC_COLUMNS:
        assert np.array_equal(a[name], b[name]), f"column {name}"
    for attr in ("tx_count", "rx_count", "collision_count", "decide_slot"):
        assert np.array_equal(
            getattr(solo.trace, attr), getattr(batched.trace, attr)
        ), attr


class TestBatchedEqualsSolo:
    def test_collision_phy(self):
        dep, params, wake = _world()
        seeds = [11, 12, 13]
        batched = run_replicated(dep, params, wake, seeds=seeds)
        for seed, res in zip(seeds, batched):
            solo = run_coloring(
                dep, params, wake, seed=seed, node_cls=BernoulliColoringNode
            )
            _assert_result_identical(solo, res)

    def test_lossy_and_multichannel(self):
        dep, params, wake = _world(n=16, graph_seed=7, wake_seed=8)
        for kwargs in ({"loss_prob": 0.12}, {"channels": 2}):
            seeds = [21, 22]
            batched = run_replicated(dep, params, wake, seeds=seeds, **kwargs)
            for seed, res in zip(seeds, batched):
                solo = run_coloring(
                    dep,
                    params,
                    wake,
                    seed=seed,
                    node_cls=BernoulliColoringNode,
                    **kwargs,
                )
                _assert_result_identical(solo, res)

    def test_batch_grouping_is_invisible(self):
        """Splitting one batch into sub-batches changes nothing (the
        worker path chunks a replica set across processes)."""
        dep, params, wake = _world(n=14, graph_seed=9, wake_seed=10)
        whole = run_replicated(dep, params, wake, seeds=[5, 6, 7, 8])
        parts = run_replicated(dep, params, wake, seeds=[5, 6]) + run_replicated(
            dep, params, wake, seeds=[7, 8]
        )
        for a, b in zip(whole, parts):
            _assert_result_identical(a, b)


class TestRngMeterIsolation:
    """Satellite audit: early finishers must not touch other streams."""

    def _solo_blocked(self, dep, params, wake, seed, *, block, max_slots=50_000):
        sim, nodes = build_simulator(
            dep, params, wake, seed=seed, node_cls=BernoulliColoringNode
        )
        res = sim.run(
            max_slots,
            stop_when=lambda s: s.trace.decided >= dep.n,
            check_every=1,
            block=block,
        )
        return sim, res

    def test_draw_count_pin_per_replica(self):
        """Each replica's RngMeter state (draws *and* calls) equals the
        solo blocked run with the same seed and block — on a staggered
        scenario where completion slots genuinely differ, so an
        early-finishing replica advancing a neighbor's stream would
        shift these counters."""
        dep, params, wake = _world(n=18, graph_seed=5, wake_seed=6, wake_window=200)
        seeds = [31, 32, 33, 34]
        block = 4096
        batch = ReplicaBatchSimulator(dep, params, wake, seeds=seeds)
        batch.run(50_000, block=block)
        slots = [sim.slot for sim in batch.sims]
        assert len(set(slots)) > 1, "scenario must stagger completion slots"
        for r, seed in enumerate(seeds):
            solo_sim, solo_res = self._solo_blocked(
                dep, params, wake, seed, block=block
            )
            assert batch.sims[r].rng.draws == solo_sim.rng.draws, f"replica {r}"
            assert batch.sims[r].rng.calls == solo_sim.rng.calls, f"replica {r}"
            assert batch.sims[r].slot == solo_res.slots

    def test_protocol_draw_accounting(self):
        """On the vectorized path every slot consumes exactly n protocol
        variates (generated or skipped), so per replica the metric
        column must sum to ``slots * n``; the raw meter may only exceed
        it by the documented never-simulated remainder of the final
        draw segment (< _DRAW_CHUNK slots' worth) — any cross-replica
        stream touch breaks these bounds."""
        from repro.radio.engine import _DRAW_CHUNK

        dep, params, wake = _world(n=18, graph_seed=5, wake_seed=6, wake_window=200)
        batch = ReplicaBatchSimulator(dep, params, wake, seeds=[41, 42, 43])
        batch.run(50_000)
        for sim in batch.sims:
            protocol = int(
                sim.trace.channel_metrics.as_arrays()["protocol_draws"].sum()
            )
            assert protocol == sim.slot * dep.n
            overdraw = sim.rng.draws - protocol
            assert 0 <= overdraw < _DRAW_CHUNK * dep.n

    def test_removing_a_finished_replica_changes_nothing(self):
        """Replica B's trajectory is identical whether it shares a batch
        with an early-finishing A or runs in a batch of one."""
        dep, params, wake = _world(n=14, graph_seed=13, wake_seed=14)
        paired = run_replicated(dep, params, wake, seeds=[51, 52])
        alone = run_replicated(dep, params, wake, seeds=[52])
        _assert_result_identical(alone[0], paired[1])


class TestGoldenTenReplicaBatch:
    """Pinned numbers for a 10-replica batched run (regenerate only for
    an intentional, understood stream change — see tests/test_golden.py
    for the policy)."""

    SEEDS = list(range(700, 710))
    #: exact completion slot per replica
    SLOTS = [13879, 10732, 11180, 10632, 14712, 11005, 10453, 10810, 11036, 10783]
    #: exact protocol-stream RngMeter draw count per replica (slots * n
    #: consumed, plus the final segment's documented remainder)
    DRAWS = [
        280120, 217180, 226140, 215180, 296780,
        222640, 211600, 218740, 223260, 218200,
    ]
    #: distinct colors used per replica
    COLORS = [10, 9, 9, 9, 10, 7, 8, 9, 9, 9]

    @pytest.fixture(scope="class")
    def batch(self):
        dep, params, wake = _world(
            n=20, degree=5.0, graph_seed=17, wake_seed=18, wake_window=150
        )
        batch = ReplicaBatchSimulator(dep, params, wake, seeds=self.SEEDS)
        batch.run(50_000)
        return batch

    def test_completion_slots(self, batch):
        assert [sim.slot for sim in batch.sims] == self.SLOTS

    def test_rng_draws(self, batch):
        assert [sim.rng.draws for sim in batch.sims] == self.DRAWS

    def test_color_counts(self, batch):
        colors = batch.color_matrix()
        assert colors.shape == (10, 20)
        assert (colors >= 0).all()
        assert [len(set(row.tolist())) for row in colors] == self.COLORS

    def test_decide_slot_matrix(self, batch):
        decided = batch.decide_slot_matrix()
        assert decided.shape == (10, 20)
        assert (decided >= 0).all()
        assert [int(row.max()) for row in decided] == [s - 1 for s in self.SLOTS]


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(4, 12),
    degree=st.floats(3.0, 6.0),
    graph_seed=st.integers(0, 10**6),
    wake_seed=st.integers(0, 10**6),
    seed0=st.integers(0, 10**6),
    replicas=st.integers(1, 4),
    wake_window=st.sampled_from([0, 40, 150]),
    loss_prob=st.sampled_from([0.0, 0.15]),
    channels=st.sampled_from([1, 2]),
    block=st.sampled_from([1, 7, 4096]),
)
def test_batched_equals_solo_property(
    n, degree, graph_seed, wake_seed, seed0, replicas, wake_window, loss_prob, channels, block
):
    """Random world, random replica set: batched(R, seeds) reproduces
    [solo(seed) for seed in seeds] exactly, including loss and the
    multichannel PHY."""
    dep = random_udg(n, expected_degree=degree, seed=graph_seed)
    params = Parameters.practical(n, max(2, dep.max_degree), 5, 18)
    wake = (
        np.zeros(n, dtype=np.int64)
        if wake_window == 0
        else uniform_random(n, window=wake_window, seed=wake_seed)
    )
    seeds = [seed0 + 977 * r for r in range(replicas)]
    max_slots = 600
    batched = run_replicated(
        dep,
        params,
        wake,
        seeds=seeds,
        loss_prob=loss_prob,
        channels=channels,
        max_slots=max_slots,
        block=block,
    )
    for seed, res in zip(seeds, batched):
        solo = run_coloring(
            dep,
            params,
            wake,
            seed=seed,
            node_cls=BernoulliColoringNode,
            loss_prob=loss_prob,
            channels=channels,
            max_slots=max_slots,
        )
        _assert_result_identical(solo, res)


class TestValidation:
    def test_rejects_empty_seed_list(self):
        dep, params, wake = _world(n=6, wake_window=0)
        with pytest.raises(ValueError, match="seed"):
            ReplicaBatchSimulator(dep, params, wake, seeds=[])

    def test_rejects_classic_node_cls(self):
        dep, params, wake = _world(n=6, wake_window=0)
        with pytest.raises(ValueError, match="batched node_cls"):
            ReplicaBatchSimulator(
                dep, params, wake, seeds=[1], node_cls=ColoringNode
            )

    def test_rejects_empty_deployment(self):
        dep = random_udg(0, expected_degree=3.0, seed=1)
        with pytest.raises(ValueError, match="empty"):
            run_replicated(dep, seeds=[1])

    def test_rejects_invalid_block(self):
        dep, params, wake = _world(n=6, wake_window=0)
        batch = ReplicaBatchSimulator(dep, params, wake, seeds=[1])
        with pytest.raises(ValueError, match="block"):
            batch.run(10, block=0)

    def test_state_tensors_are_views(self):
        """The (R, n) tensors are the replicas' live engine state, not
        snapshots: each simulator's dense vectors alias the batch rows."""
        dep, params, wake = _world(n=8, wake_window=0)
        batch = ReplicaBatchSimulator(dep, params, wake, seeds=[1, 2])
        assert batch.P.shape == (2, 8) and batch.EVT.shape == (2, 8)
        for r, sim in enumerate(batch.sims):
            assert sim._p.base is batch.P
            assert sim._evt.base is batch.EVT
            assert np.shares_memory(sim._p, batch.P[r])
