"""Tests for the run narrator."""

import pytest

from repro import run_coloring
from repro.analysis.explain import explain_node, explain_run
from repro.graphs import random_udg


@pytest.fixture(scope="module")
def result():
    dep = random_udg(30, expected_degree=7, seed=4, connected=True)
    res = run_coloring(dep, seed=40)
    assert res.completed and res.proper
    return res


class TestExplainNode:
    def test_leader_story(self, result):
        import numpy as np

        leader = int(np.flatnonzero(result.leaders)[0])
        text = explain_node(result, leader)
        assert "LEADER" in text
        assert "woke up" in text
        assert "final decision" in text

    def test_nonleader_story(self, result):
        import numpy as np

        v = int(np.flatnonzero(~result.leaders)[0])
        text = explain_node(result, v)
        assert "requesting intra-cluster color" in text
        assert "verifying color" in text
        assert f"node {v}" in text

    def test_out_of_range(self, result):
        with pytest.raises(ValueError):
            explain_node(result, 999)

    def test_capped_run_mentions_no_decision(self):
        dep = random_udg(20, expected_degree=6, seed=5, connected=True)
        res = run_coloring(dep, seed=50, max_slots=5)
        assert "never decided" in explain_node(res, 0)


class TestExplainRun:
    def test_summary_fields(self, result):
        text = explain_run(result)
        assert "completed" in text
        assert "leaders" in text
        assert "proper coloring" in text
        assert "transmissions" in text

    def test_capped_marked(self):
        dep = random_udg(20, expected_degree=6, seed=5, connected=True)
        res = run_coloring(dep, seed=50, max_slots=5)
        text = explain_run(res)
        assert "CAPPED" in text
