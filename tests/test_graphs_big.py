"""Tests for generalized BIG generators (quasi-UDG, obstacles, fading)."""

import numpy as np
import pytest

from repro.graphs import bernoulli_fading, quasi_udg, random_udg, wall_obstacle_udg
from repro.graphs.big import _segments_intersect


class TestQuasiUdg:
    def test_inner_links_certain_outer_absent(self):
        dep = quasi_udg(60, r_in=1.0, r_out=1.6, side=6.0, seed=11)
        pts = dep.positions
        for u in range(dep.n):
            for v in range(u + 1, dep.n):
                d = float(np.linalg.norm(pts[u] - pts[v]))
                if d <= 1.0:
                    assert dep.graph.has_edge(u, v)
                elif d > 1.6:
                    assert not dep.graph.has_edge(u, v)

    def test_gray_zone_probability(self):
        # With link_prob=0 the quasi-UDG equals the inner UDG.
        dep0 = quasi_udg(50, r_in=1.0, r_out=2.0, side=5.0, link_prob=0.0, seed=3)
        pts = dep0.positions
        for u, v in dep0.graph.edges:
            assert np.linalg.norm(pts[u] - pts[v]) <= 1.0 + 1e-9

    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            quasi_udg(10, r_in=2.0, r_out=1.0, side=5.0)

    def test_reproducible(self):
        a = quasi_udg(40, r_in=0.8, r_out=1.4, side=5.0, seed=8)
        b = quasi_udg(40, r_in=0.8, r_out=1.4, side=5.0, seed=8)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)


class TestSegmentsIntersect:
    def test_crossing(self):
        assert _segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_parallel_disjoint(self):
        assert not _segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_endpoint(self):
        assert _segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_disjoint(self):
        assert not _segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))


class TestWallObstacleUdg:
    def test_wall_blocks_links(self):
        # A full-height vertical wall at x=2 disconnects the halves.
        dep = wall_obstacle_udg(
            80, radius=1.2, side=4.0, walls=[((2.0, -1.0), (2.0, 5.0))], seed=5
        )
        pts = dep.positions
        for u, v in dep.graph.edges:
            assert (pts[u][0] - 2.0) * (pts[v][0] - 2.0) > 0

    def test_no_walls_is_plain_udg(self):
        dep = wall_obstacle_udg(40, radius=1.0, side=4.0, walls=[], seed=5)
        assert dep.meta["blocked"] == 0

    def test_blocked_count_recorded(self):
        dep = wall_obstacle_udg(
            60, radius=1.5, side=4.0, walls=[((2.0, 0.0), (2.0, 4.0))], seed=5
        )
        assert dep.meta["blocked"] > 0


class TestBernoulliFading:
    def test_probability_extremes(self):
        base = random_udg(50, side=4.0, seed=7)
        keep = bernoulli_fading(base, 0.0, seed=1)
        assert keep.m == base.m
        kill = bernoulli_fading(base, 1.0, seed=1)
        assert kill.m == 0

    def test_subset_of_base(self):
        base = random_udg(50, side=4.0, seed=7)
        faded = bernoulli_fading(base, 0.4, seed=2)
        assert set(faded.graph.edges) <= {tuple(sorted(e)) for e in base.graph.edges} | set(
            base.graph.edges
        )

    def test_rejects_bad_probability(self):
        base = random_udg(10, side=3.0, seed=7)
        with pytest.raises(ValueError):
            bernoulli_fading(base, 1.5)

    def test_kind_tag_extended(self):
        base = random_udg(10, side=3.0, seed=7)
        assert "fading" in bernoulli_fading(base, 0.3, seed=0).kind
