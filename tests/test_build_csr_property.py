"""Property tests for the engine's CSR adjacency flattening.

:func:`repro.radio.engine.build_csr` is the load-bearing data structure
of the vectorized fast path: every per-slot collision resolution indexes
through ``(indptr, indices)``.  Hypothesis generates arbitrary
deployments — empty, single-node, isolated nodes, dense cliques — and
checks the CSR invariants and the exact round-trip back to per-node
neighbor lists.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_graph
from repro.radio.engine import build_csr


@st.composite
def deployments(draw):
    """Arbitrary undirected graphs on 0..n-1 wrapped as deployments.

    Sizes 0..12; edge sets range from empty (all nodes isolated) to the
    complete graph, so sparsity is not an implicit assumption.
    """
    n = draw(st.integers(min_value=0, max_value=12))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))
        if all_pairs
        else st.just([])
    )
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return from_graph(g)


@given(deployments())
@settings(max_examples=60, deadline=None)
def test_csr_invariants(dep):
    indptr, indices = build_csr(dep)
    assert indptr.dtype == np.int64
    assert indices.dtype == np.int64
    assert len(indptr) == dep.n + 1
    assert indptr[0] == 0
    assert indptr[-1] == len(indices)
    assert np.all(np.diff(indptr) >= 0)  # monotone non-decreasing
    if len(indices):
        assert indices.min() >= 0
        assert indices.max() < dep.n


@given(deployments())
@settings(max_examples=60, deadline=None)
def test_csr_round_trips_neighbor_lists(dep):
    indptr, indices = build_csr(dep)
    for v in range(dep.n):
        sl = indices[indptr[v] : indptr[v + 1]]
        expected = sorted(dep.graph.neighbors(v))
        assert sl.tolist() == expected
        assert v not in sl  # no self-loops in the radio model
    # Total CSR size is exactly the directed edge count.
    assert len(indices) == 2 * dep.graph.number_of_edges()


def test_zero_node_deployment():
    dep = from_graph(nx.Graph())
    indptr, indices = build_csr(dep)
    assert indptr.tolist() == [0]
    assert len(indices) == 0


def test_isolated_nodes_only():
    g = nx.Graph()
    g.add_nodes_from(range(5))
    dep = from_graph(g)
    indptr, indices = build_csr(dep)
    assert indptr.tolist() == [0] * 6
    assert len(indices) == 0


def test_dense_clique():
    dep = from_graph(nx.complete_graph(7))
    indptr, indices = build_csr(dep)
    assert np.all(np.diff(indptr) == 6)
    for v in range(7):
        assert sorted(indices[indptr[v] : indptr[v + 1]]) == [
            u for u in range(7) if u != v
        ]
