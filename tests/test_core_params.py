"""Tests for the parameter sets and derived quantities."""

import math

import pytest

from repro.core import Parameters, paper_time_bound, suggested_max_slots
from repro.graphs import random_udg


def practical(n=100, delta=10, k1=4, k2=9, **kw):
    return Parameters.practical(n, delta, k1, k2, **kw)


class TestValidation:
    def test_rejects_tiny_estimates(self):
        with pytest.raises(ValueError):
            Parameters.practical(1, 10, 4, 9)
        with pytest.raises(ValueError):
            Parameters.practical(10, 1, 4, 9)

    def test_rejects_kappa2_one(self):
        # kappa2 = 1 would make leaders transmit always and deadlock.
        with pytest.raises(ValueError, match="kappa"):
            Parameters(n=10, delta=5, kappa1=1, kappa2=1, alpha=1, beta=1, gamma=1, sigma=3)

    def test_rejects_kappa1_above_kappa2(self):
        with pytest.raises(ValueError, match="kappa1"):
            Parameters(n=10, delta=5, kappa1=5, kappa2=4, alpha=1, beta=1, gamma=1, sigma=3)

    def test_rejects_sigma_at_most_2gamma(self):
        # Theorem 2's case split needs sigma > 2*gamma.
        with pytest.raises(ValueError, match="sigma"):
            Parameters(n=10, delta=5, kappa1=2, kappa2=4, alpha=1, beta=1, gamma=2, sigma=4)


class TestDerivedQuantities:
    def test_zeta(self):
        p = practical(delta=17)
        assert p.zeta(0) == 1
        assert p.zeta(1) == 17
        assert p.zeta(5) == 17

    def test_critical_range_scales_with_zeta(self):
        p = practical(delta=20)
        assert p.critical_range(1) > p.critical_range(0)
        assert p.critical_range(1) == math.ceil(p.gamma * 20 * math.log(p.n))

    def test_probabilities(self):
        p = practical(delta=10, k2=9)
        assert p.p_active == pytest.approx(1 / 90)
        assert p.p_leader == pytest.approx(1 / 9)

    def test_threshold_exceeds_twice_critical_range_coeff(self):
        p = practical()
        assert p.sigma > 2 * p.gamma

    def test_color_for_tc(self):
        p = practical(k2=9)
        assert p.color_for_tc(0) == 0
        assert p.color_for_tc(1) == 10
        assert p.color_for_tc(3) == 30


class TestTheoretical:
    def test_formulas_positive_and_large(self):
        p = Parameters.theoretical(n=100, delta=10, kappa1=5, kappa2=18)
        # sigma = 10 e^2 k2 / ((1-1/k2)(1-1/(k2 D))) >= 10 e^2 k2.
        assert p.sigma >= 10 * math.e**2 * 18
        assert p.gamma >= 5 * 18

    def test_satisfies_analysis_preconditions(self):
        p = Parameters.theoretical(n=100, delta=10, kappa1=5, kappa2=18)
        assert p.check_analysis_preconditions() == []

    def test_practical_violates_alpha_condition(self):
        p = practical()
        problems = p.check_analysis_preconditions()
        assert any("alpha" in s for s in problems)
        with pytest.raises(ValueError):
            p.check_analysis_preconditions(strict=True)

    def test_exact_sigma_formula(self):
        k1, k2, d = 3, 7, 12
        p = Parameters.theoretical(n=50, delta=d, kappa1=k1, kappa2=k2)
        expected = 10 * math.e**2 * k2 / ((1 - 1 / k2) * (1 - 1 / (k2 * d)))
        assert p.sigma == pytest.approx(expected)

    def test_exact_gamma_formula(self):
        k1, k2, d = 3, 7, 12
        p = Parameters.theoretical(n=50, delta=d, kappa1=k1, kappa2=k2)
        denom = (math.exp(-1) * (1 - 1 / k2)) ** (k1 / k2) * (
            math.exp(-1) * (1 - 1 / (k2 * d))
        ) ** (1 / k2)
        assert p.gamma == pytest.approx(5 * k2 / denom)


class TestForDeployment:
    def test_measures_kappas(self):
        dep = random_udg(50, expected_degree=8, seed=4)
        p = Parameters.for_deployment(dep)
        assert 2 <= p.kappa2 <= 18
        assert p.delta == max(2, dep.max_degree)

    def test_unknown_regime(self):
        dep = random_udg(10, side=3.0, seed=4)
        with pytest.raises(ValueError, match="regime"):
            Parameters.for_deployment(dep, regime="mystical")

    def test_overrides(self):
        p = practical()
        q = p.with_overrides(gamma=p.gamma, sigma=p.sigma * 2)
        assert q.sigma == p.sigma * 2 and q.n == p.n


class TestTimeBounds:
    def test_paper_bound_positive_and_monotone_in_delta(self):
        a = paper_time_bound(practical(delta=5))
        b = paper_time_bound(practical(delta=50))
        assert 0 < a < b

    def test_suggested_max_slots_offsets_wake(self):
        p = practical()
        assert suggested_max_slots(p, wake_max=1000) == suggested_max_slots(p) + 1000
