"""Tests for seeded RNG management."""

import numpy as np

from repro._util import RngStream, spawn_generator, stable_seed


class TestSpawnGenerator:
    def test_same_seed_same_stream(self):
        a = spawn_generator(123)
        b = spawn_generator(123)
        assert np.array_equal(a.integers(0, 1 << 20, size=16), b.integers(0, 1 << 20, size=16))

    def test_different_keys_differ(self):
        a = spawn_generator(123, 0).integers(0, 1 << 30, size=8)
        b = spawn_generator(123, 1).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_none_seed_gives_generator(self):
        g = spawn_generator(None)
        assert isinstance(g, np.random.Generator)


class TestRngStream:
    def test_children_are_reproducible(self):
        s1, s2 = RngStream(7), RngStream(7)
        for _ in range(3):
            a = s1.child().integers(0, 1 << 30, size=4)
            b = s2.child().integers(0, 1 << 30, size=4)
            assert np.array_equal(a, b)

    def test_successive_children_differ(self):
        s = RngStream(7)
        a = s.child().integers(0, 1 << 30, size=8)
        b = s.child().integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_child_seed_in_range(self):
        s = RngStream(7)
        for _ in range(5):
            seed = s.child_seed()
            assert 0 <= seed < 2**63


class TestStableSeed:
    """Regression for the PYTHONHASHSEED trap: experiment master seeds
    derived from ``hash(str)`` differed between a sweep's parent process
    and its spawned workers (and between runs), silently breaking the
    tables-identical-at-any-worker-count contract.  ``stable_seed`` must
    be process-independent."""

    def test_known_values_pinned(self):
        # Pinned across interpreters and runs (CRC-32 of repr(parts)).
        import subprocess
        import sys

        code = (
            "from repro._util import stable_seed;"
            "print(stable_seed('udg'), stable_seed('sync', 1.5, modulo=100_000))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        ).stdout.split()
        assert [int(x) for x in out] == [
            stable_seed("udg"),
            stable_seed("sync", 1.5, modulo=100_000),
        ]

    def test_distinct_parts_distinct_seeds(self):
        seeds = {stable_seed(f) for f in ("udg", "quasi_udg", "walls", "fading")}
        assert len(seeds) == 4

    def test_modulo_bounds(self):
        assert 0 <= stable_seed("x", modulo=7) < 7
